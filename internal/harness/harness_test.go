package harness

import (
	"strings"
	"testing"
	"time"

	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func TestEngineSpecFactory(t *testing.T) {
	cases := []struct {
		spec EngineSpec
		name string
	}{
		{EngineSpec{Kind: "swisstm"}, "SwissTM"},
		{EngineSpec{Kind: "swisstm", Policy: "timid"}, "SwissTM(timid)"},
		{EngineSpec{Kind: "tl2"}, "TL2"},
		{EngineSpec{Kind: "tinystm"}, "TinySTM"},
		{EngineSpec{Kind: "rstm", Acquire: "lazy", Manager: "greedy"}, "RSTM(lazy/greedy)"},
		{EngineSpec{Kind: "rstm", Label: "RSTM"}, "RSTM"},
	}
	for _, c := range cases {
		if got := c.spec.DisplayName(); got != c.name {
			t.Errorf("DisplayName(%+v) = %q, want %q", c.spec, got, c.name)
		}
		e := c.spec.New()
		if e == nil {
			t.Fatalf("New(%+v) returned nil", c.spec)
		}
		// Every engine must run a trivial transaction.
		th := e.NewThread(0)
		var h stm.Handle
		stm.AtomicVoid(th, func(tx stm.Tx) {
			h = tx.NewObject(1)
			tx.WriteField(h, 0, 5)
		})
		stm.AtomicVoid(th, func(tx stm.Tx) {
			if tx.ReadField(h, 0) != 5 {
				t.Errorf("%s: lost write", c.spec.DisplayName())
			}
		})
	}
}

func TestUnknownEngineKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown engine kind")
		}
	}()
	EngineSpec{Kind: "nope"}.New()
}

func TestMeasureThroughputCountsOps(t *testing.T) {
	var h stm.Handle
	w := Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
		},
	}
	res, err := MeasureThroughput(EngineSpec{Kind: "swisstm"}, w, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Throughput() == 0 {
		t.Fatal("no operations measured")
	}
	if res.Stats.Commits < res.Ops {
		t.Fatalf("commits %d < ops %d (each op commits ≥ once)", res.Stats.Commits, res.Ops)
	}
}

func TestMeasureWorkConservation(t *testing.T) {
	// Fixed-work: all tasks processed exactly once across workers.
	const tasks = 1000
	var h stm.Handle
	cursor := make(chan int, tasks)
	for i := 0; i < tasks; i++ {
		cursor <- i
	}
	close(cursor)
	res, err := MeasureWork(EngineSpec{Kind: "tinystm"},
		func(e stm.STM) error {
			th := e.NewThread(0)
			stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
			return nil
		},
		func(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
			for range cursor {
				stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
			}
		},
		func(e stm.STM) error {
			th := e.NewThread(10)
			var got stm.Word
			stm.AtomicVoid(th, func(tx stm.Tx) { got = tx.ReadField(h, 0) })
			if got != tasks {
				t.Errorf("processed %d tasks, want %d", got, tasks)
			}
			return nil
		},
		3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CheckedOK {
		t.Fatal("check did not run")
	}
}

func TestFormatFigure(t *testing.T) {
	out := FormatFigure("Test", "tx/s", []int{1, 2},
		[]Series{{Name: "A", Points: map[int]float64{1: 10, 2: 20}},
			{Name: "B", Points: map[int]float64{1: 5}}})
	for _, want := range []string{"# Test", "tx/s", "A", "B", "10.00", "20.00", "5.00", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(0, "x", 1, 0) != 0 {
		t.Fatal("zero base must stay zero (nondeterministic mode)")
	}
	a := DeriveSeed(42, "fig2|stmbench7|SwissTM", 1, 0)
	if a == 0 {
		t.Fatal("seeded derivation must never yield 0")
	}
	if a != DeriveSeed(42, "fig2|stmbench7|SwissTM", 1, 0) {
		t.Fatal("derivation must be deterministic")
	}
	for _, other := range []uint64{
		DeriveSeed(42, "fig2|stmbench7|SwissTM", 1, 1),
		DeriveSeed(42, "fig2|stmbench7|SwissTM", 2, 0),
		DeriveSeed(42, "fig2|stmbench7|TL2", 1, 0),
		DeriveSeed(43, "fig2|stmbench7|SwissTM", 1, 0),
	} {
		if other == a {
			t.Fatal("distinct run points must get distinct seeds")
		}
	}
}

// counterWorkload increments one shared field per op.
func counterWorkload() Workload {
	var h stm.Handle
	return Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
		},
	}
}

func TestMeasureThroughputOpsIsExact(t *testing.T) {
	const quota = 500
	res, err := MeasureThroughputOps(EngineSpec{Kind: "swisstm"}, counterWorkload(), 2, quota, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2*quota {
		t.Fatalf("fixed-ops run did %d ops, want %d", res.Ops, 2*quota)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestToRecord(t *testing.T) {
	res, err := MeasureThroughputOps(EngineSpec{Kind: "tl2"}, counterWorkload(), 1, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.ToRecord("figX", "counter", 2, 9)
	if rec.Experiment != "figX" || rec.Workload != "counter" || rec.Repeat != 2 || rec.Seed != 9 {
		t.Fatalf("labels not bridged: %+v", rec)
	}
	if rec.Engine != "TL2" || rec.EngineKind != "tl2" || rec.Threads != 1 {
		t.Fatalf("engine identity not bridged: %+v", rec)
	}
	if rec.Ops != 100 || rec.Commits != res.Stats.Commits || !rec.CheckedOK {
		t.Fatalf("measurement not bridged: %+v", rec)
	}
	if rec.Throughput == 0 || rec.DurationSec == 0 {
		t.Fatalf("derived metrics missing: %+v", rec)
	}
}

func TestRepeatThroughputSeededIsReproducible(t *testing.T) {
	cfg := RunConfig{
		Experiment: "t", Workload: "counter", Threads: 1,
		FixedOps: 300, Repeats: 3, Seed: 1234,
	}
	run := func() []results.Record {
		recs, err := RepeatThroughput(EngineSpec{Kind: "tinystm"},
			func(seed uint64) Workload { return counterWorkload() }, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 records per run, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Ops != b[i].Ops {
			t.Fatalf("repeat %d: Ops %d != %d (seeded runs must match bit-for-bit)", i, a[i].Ops, b[i].Ops)
		}
		if a[i].Seed != b[i].Seed || a[i].Seed == 0 {
			t.Fatalf("repeat %d: per-repeat seeds must match and be non-zero", i)
		}
		if i > 0 && a[i].Seed == a[i-1].Seed {
			t.Fatal("distinct repeats must get distinct derived seeds")
		}
	}
}

func TestRepeatWorkRecords(t *testing.T) {
	var h stm.Handle
	const tasks = 200
	mk := func(seed uint64) WorkSpec {
		cursor := make(chan int, tasks)
		for i := 0; i < tasks; i++ {
			cursor <- i
		}
		close(cursor)
		return WorkSpec{
			Setup: func(e stm.STM) error {
				th := e.NewThread(0)
				stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
				return nil
			},
			Work: func(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
				for range cursor {
					stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
				}
			},
		}
	}
	recs, err := RepeatWork(EngineSpec{Kind: "swisstm"}, mk,
		RunConfig{Experiment: "t", Workload: "fixed", Threads: 2, Repeats: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	for i, r := range recs {
		if r.Ops < tasks {
			t.Fatalf("repeat %d: ops %d < %d tasks", i, r.Ops, tasks)
		}
		if r.Repeat != i {
			t.Fatalf("repeat index %d recorded as %d", i, r.Repeat)
		}
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// 2× faster than one peer, equal to another: mean of (1.0, 0.0) = 0.5.
	if got := GeoMeanSpeedup(2, []float64{1, 2}); got != 0.5 {
		t.Fatalf("GeoMeanSpeedup = %v, want 0.5", got)
	}
	if got := GeoMeanSpeedup(0, []float64{1}); got != 0 {
		t.Fatalf("zero merit should give 0, got %v", got)
	}
	if got := GeoMeanSpeedup(1, nil); got != 0 {
		t.Fatalf("no peers should give 0, got %v", got)
	}
}
