package tinystm

import (
	"testing"

	"swisstm/internal/obs"
	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyStateObs pins the instrumented hot path: with
// per-transaction telemetry armed, warm commits must still allocate
// nothing (DESIGN.md §11).
func TestZeroAllocSteadyStateObs(t *testing.T) {
	o := obs.NewTxnObs()
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10, Obs: o})
	stmtest.ZeroAllocSteadyStateObs(t, e, o, true, true)
}

// TestAbortCausePartition asserts sum(causes) == Aborts plus the
// validation and delivery splits under a contended multi-thread mix.
func TestAbortCausePartition(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10, BackoffUnit: 1})
	stmtest.AbortCausePartition(t, e)
}
