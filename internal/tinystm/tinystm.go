// Package tinystm implements the TinySTM algorithm of Felber, Fetzer and
// Riegel ("Dynamic Performance Tuning of Word-Based Software Transactional
// Memory", PPoPP 2008), the eager baseline of the paper's evaluation
// (version 0.9.5 defaults: encounter-time locking, write-back, timid
// contention management).
//
// TinySTM detects *both* conflict kinds eagerly:
//
//   - Writes acquire a per-stripe lock at encounter time (like SwissTM),
//     buffering new values in a redo log.
//   - A read of a stripe locked by another transaction aborts the reader
//     immediately — the behaviour the paper's §1 (point 2) identifies as
//     harmful for mixed workloads, and which Figure 8 demonstrates: one
//     long writer blocks many readers.
//
// Like SwissTM (and unlike TL2) it uses a time-based scheme with
// timestamp extension, so reads of freshly updated locations can
// revalidate instead of aborting.
package tinystm

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"swisstm/internal/mem"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Config parameterizes a TinySTM engine.
type Config struct {
	ArenaWords int
	Arena      *mem.Arena
	// StripeWords is the lock granularity in words; 0 selects the
	// 4-word default shared by all word-based engines (see the field's
	// documentation in package swisstm). Must be a power of two ≤ 64.
	StripeWords int
	TableBits   uint
	BackoffUnit int
	// UnwindAborts restores panic-delivered commit-time aborts; a
	// measurement ablation only (see the field in package swisstm).
	UnwindAborts bool
	// Obs, when non-nil, collects per-transaction telemetry at commit
	// (see the field in package swisstm; DESIGN.md §11).
	Obs *obs.TxnObs
}

func (c *Config) fill() {
	if c.ArenaWords == 0 {
		c.ArenaWords = 1 << 22
	}
	if c.TableBits == 0 {
		c.TableBits = 20
	}
	if c.BackoffUnit == 0 {
		c.BackoffUnit = 512
	}
	if c.StripeWords == 0 {
		c.StripeWords = 4
	}
	if c.StripeWords > 64 || c.StripeWords&(c.StripeWords-1) != 0 {
		panic("tinystm: StripeWords must be a power of two ≤ 64")
	}
}

// wEntry is a redo-log entry for one stripe (write-back design).
type wEntry struct {
	owner atomic.Pointer[txn] // read by other threads for identity checks
	idx   uint32
	base  stm.Addr
	mask  uint64
	vals  []stm.Word
	// overflow buffers writes to aliased stripes (distinct memory regions
	// hashing to the same lock-table entry); see the same field in
	// package swisstm.
	overflow []wsPair
}

// wsPair is one buffered aliased write.
type wsPair struct {
	addr stm.Addr
	val  stm.Word
}

type rEntry struct {
	idx uint32
	ver uint64
}

// Engine is a TinySTM instance. Each stripe has a version counter and an
// owner pointer; a non-nil owner is the encounter-time write lock. The
// global clock — the hottest write-shared word — is padded onto its own
// cache line so committers bumping it do not invalidate the line holding
// the read-mostly mapping state in every other core's cache.
type Engine struct {
	cfg    Config
	arena  *mem.Arena
	heap   []atomic.Uint64 // arena backing array, cached for direct indexing
	vers   []atomic.Uint64
	owners []atomic.Pointer[wEntry]
	shift  uint
	mask   uint32
	stripe uint32

	_     mem.CacheLinePad
	clock mem.PaddedUint64
}

// New creates a TinySTM engine.
func New(cfg Config) *Engine {
	cfg.fill()
	a := cfg.Arena
	if a == nil {
		a = mem.NewArena(cfg.ArenaWords)
	}
	n := 1 << cfg.TableBits
	return &Engine{
		cfg:    cfg,
		arena:  a,
		heap:   a.Words(),
		vers:   make([]atomic.Uint64, n),
		owners: make([]atomic.Pointer[wEntry], n),
		shift:  uint(bits.TrailingZeros(uint(cfg.StripeWords))),
		mask:   uint32(n - 1),
		stripe: uint32(cfg.StripeWords),
	}
}

// Name implements stm.STM.
func (e *Engine) Name() string { return "TinySTM" }

// Arena implements stm.STM.
func (e *Engine) Arena() *mem.Arena { return e.arena }

func (e *Engine) stripeIdx(a stm.Addr) uint32    { return (a >> e.shift) & e.mask }
func (e *Engine) stripeBase(a stm.Addr) stm.Addr { return a &^ (e.stripe - 1) }

// txn is a TinySTM transaction descriptor, one per thread.
type txn struct {
	e        *Engine
	id       int
	ro       bool // current transaction declared read-only (stm.ReadOnly)
	validTS  uint64
	readLog  []rEntry
	writeLog []*wEntry
	pool     []*wEntry
	poolIdx  int
	rc       util.StripeCache // read-set dedup cache (DESIGN.md §7)
	rng      *util.Rand
	succ     int
	roV      roTx          // pre-allocated read-only view returned by Begin(ReadOnly)
	obsh     *obs.TxnShard // per-thread telemetry shard (nil = obs off)
	stats    stm.Stats
}

// NewThread implements stm.STM.
func (e *Engine) NewThread(id int) stm.Thread {
	if id < 0 || id >= stm.MaxThreads {
		panic("tinystm: thread id out of range")
	}
	t := &txn{
		e:        e,
		id:       id,
		readLog:  make([]rEntry, 0, 1024),
		writeLog: make([]*wEntry, 0, 256),
		rng:      util.NewRand(uint64(id)*0xabcd1234 + 3),
	}
	t.roV.t = t
	t.rc.Init(1024)
	if e.cfg.Obs != nil {
		t.obsh = e.cfg.Obs.Shard(id)
	}
	return t
}

// Stats implements stm.Thread.
func (t *txn) Stats() stm.Stats { return t.stats }

// Run implements stm.Thread: the engine-facing v2 primitive.
func (t *txn) Run(body func(stm.Tx) error, mode stm.Mode) error {
	return stm.RunLoop(t, body, mode)
}

// Begin implements stm.Thread. A declared read-only transaction skips the
// write-set init entirely: the write log is invariantly empty between
// transactions (commit and abort both truncate it) and the write-entry
// pool cursor only matters to writers (DESIGN.md §9.3).
func (t *txn) Begin(mode stm.Mode, restart bool) stm.Tx {
	if mode == stm.ReadOnly {
		t.ro = true
		t.validTS = t.e.clock.Load()
		t.readLog = t.readLog[:0]
		t.rc.Reset()
		return &t.roV
	}
	t.ro = false
	t.begin()
	return t
}

// Commit implements stm.Thread.
func (t *txn) Commit() bool {
	var ok bool
	if t.ro {
		ok = t.commitRO()
	} else {
		ok = t.commit()
	}
	if ok {
		t.succ = 0
	}
	return ok
}

// Unwind implements stm.Thread: triage a panic recovered mid-body; a
// foreign panic releases the encounter-time locks before propagating.
func (t *txn) Unwind(r any) bool {
	if _, rb := r.(stm.RollbackSignal); rb {
		t.stats.AbortsUnwound++
		return true
	}
	t.releaseOwned()
	return false
}

// AbortUser implements stm.Thread: roll back because the body returned an
// error — encounter-time locks released, redo log dropped, no retry.
func (t *txn) AbortUser() {
	t.abort()
	t.stats.AbortsUser++
	t.stats.AbortsReturned++
	t.succ = 0 // the logical transaction ends here, like a commit
}

// Backoff implements stm.Thread.
func (t *txn) Backoff() {
	t.succ++
	util.BackoffLinear(t.rng, t.succ, t.e.cfg.BackoffUnit)
}

func (t *txn) begin() {
	t.validTS = t.e.clock.Load()
	t.readLog = t.readLog[:0]
	t.writeLog = t.writeLog[:0]
	t.poolIdx = 0
	t.rc.Reset()
}

// abort performs the rollback bookkeeping without deciding the delivery
// mechanism (checked return vs unwinding panic); see package swisstm.
func (t *txn) abort() {
	t.releaseOwned()
	t.stats.Aborts++
	t.stats.ReadsLogged += uint64(len(t.readLog))
}

// commitAbort delivers a commit-time abort as a checked return (or the
// old panic under the UnwindAborts ablation).
func (t *txn) commitAbort() bool {
	t.abort()
	if t.e.cfg.UnwindAborts {
		panic(stm.SignalRollback)
	}
	t.stats.AbortsReturned++
	return false
}

// Restart implements stm.Tx: a user-requested retry always unwinds.
func (t *txn) Restart() {
	t.abort()
	t.stats.AbortsExplicit++
	panic(stm.SignalRestart)
}

func (t *txn) releaseOwned() {
	for _, we := range t.writeLog {
		t.e.owners[we.idx].Store(nil)
	}
	t.writeLog = t.writeLog[:0]
}

// Load implements stm.Tx: the thin wrapper that converts load's checked
// abort into the single unwinding panic (a read conflict must interrupt
// the user closure).
func (t *txn) Load(a stm.Addr) stm.Word {
	v, ok := t.load(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// load implements the TinySTM read protocol: encounter-time lock check
// (abort if locked by another), consistent version/value sample, timestamp
// extension when the version is newer than the snapshot. ok=false means
// the transaction aborted.
func (t *txn) load(a stm.Addr) (stm.Word, bool) {
	// Local slice header + length mask: provably in-bounds (no check),
	// one engine dereference.
	vers := t.e.vers
	i := int(a>>t.e.shift) & (len(vers) - 1)
	idx := uint32(i)
	own := &t.e.owners[i]
	ver := &vers[i]
	for {
		if we := own.Load(); we != nil {
			if we.owner.Load() == t {
				if v, ok := we.get(a); ok {
					return v, true
				}
				return t.e.heap[a].Load(), true
			}
			// Encounter-time locking: a reader hitting a foreign lock
			// aborts at once (timid CM).
			t.stats.AbortsLocked++
			t.abort()
			return 0, false
		}
		v1 := ver.Load()
		val := t.e.heap[a].Load()
		v2 := ver.Load()
		if v1 != v2 || own.Load() != nil {
			// A committer moved under us; resample.
			runtime.Gosched()
			continue
		}
		// Read-set dedup: log each stripe once. A matching version means
		// the re-read is consistent with the logged entry; a moved
		// version means the logged entry can never validate again, so
		// abort now rather than at the next extension (the outcome the
		// duplicate entry would force anyway; see dedup_test.go).
		// Consecutive same-stripe reads hit the newest log entry without
		// touching the hash cache.
		if n := len(t.readLog); n != 0 && t.readLog[n-1].idx == idx {
			if t.readLog[n-1].ver == v1 {
				t.stats.ReadsDeduped++
				return val, true
			}
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		if pos, found := t.rc.LookupOrInsert(idx, uint32(len(t.readLog))); found {
			if t.readLog[pos].ver == v1 {
				t.stats.ReadsDeduped++
				return val, true
			}
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		t.readLog = append(t.readLog, rEntry{idx: idx, ver: v1})
		if v1 > t.validTS && !t.extend() {
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		return val, true
	}
}

// loadRO is the declared-read-only read protocol: the consistent
// version/value sample plus dedup/extension of load, minus the own-lock
// branch — a read-only transaction owns no encounter-time lock, so any
// non-nil owner is foreign and aborts us at once. ok=false means the
// transaction aborted.
func (t *txn) loadRO(a stm.Addr) (stm.Word, bool) {
	vers := t.e.vers
	i := int(a>>t.e.shift) & (len(vers) - 1)
	idx := uint32(i)
	own := &t.e.owners[i]
	ver := &vers[i]
	for {
		if own.Load() != nil {
			t.stats.AbortsLocked++
			t.abort()
			return 0, false
		}
		v1 := ver.Load()
		val := t.e.heap[a].Load()
		v2 := ver.Load()
		if v1 != v2 || own.Load() != nil {
			runtime.Gosched()
			continue
		}
		// Same read-set dedup discipline as load (DESIGN.md §7).
		if n := len(t.readLog); n != 0 && t.readLog[n-1].idx == idx {
			if t.readLog[n-1].ver == v1 {
				t.stats.ReadsDeduped++
				return val, true
			}
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		if pos, found := t.rc.LookupOrInsert(idx, uint32(len(t.readLog))); found {
			if t.readLog[pos].ver == v1 {
				t.stats.ReadsDeduped++
				return val, true
			}
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		t.readLog = append(t.readLog, rEntry{idx: idx, ver: v1})
		if v1 > t.validTS && !t.extend() {
			t.stats.AbortsValid++
			t.stats.AbortsValidRead++
			t.abort()
			return 0, false
		}
		return val, true
	}
}

// Store implements stm.Tx; an eager write conflict interrupts the user
// closure via the unwinding signal.
func (t *txn) Store(a stm.Addr, v stm.Word) {
	if !t.store(a, v) {
		panic(stm.SignalRollback)
	}
}

// store implements encounter-time lock acquisition with redo logging.
// ok=false means the transaction aborted.
func (t *txn) store(a stm.Addr, v stm.Word) bool {
	idx := t.e.stripeIdx(a)
	own := &t.e.owners[idx]
	for {
		we := own.Load()
		if we != nil {
			if we.owner.Load() == t {
				we.set(a, v)
				return true
			}
			// Write/write conflict: timid — abort self.
			t.stats.AbortsWW++
			t.abort()
			return false
		}
		entry := t.newEntry(idx, t.e.stripeBase(a))
		entry.set(a, v)
		if own.CompareAndSwap(nil, entry) {
			t.writeLog = append(t.writeLog, entry)
			break
		}
		t.poolIdx--
	}
	if ver := t.e.vers[idx].Load(); ver > t.validTS && !t.extend() {
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return false
	}
	return true
}

// commitRO commits a declared read-only transaction: reads were
// validated (and extended) incrementally and no lock is held, so there is
// nothing left to check — the write side of commit (clock bump, redo
// write-back, lock release) is skipped wholesale.
func (t *txn) commitRO() bool {
	t.stats.Commits++
	t.stats.ROCommits++
	t.stats.ReadsLogged += uint64(len(t.readLog))
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), 0)
	}
	return true
}

// commit writes back the redo log under the encounter-time locks. It
// reports false when the transaction aborted; commit-time validation
// failures take the checked return path and never unwind.
func (t *txn) commit() bool {
	if len(t.writeLog) == 0 {
		t.stats.Commits++
		t.stats.ReadsLogged += uint64(len(t.readLog))
		if t.obsh != nil {
			t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), 0)
		}
		return true
	}
	ts := t.e.clock.Add(1)
	if ts > t.validTS+1 && !t.validate() {
		t.stats.AbortsValid++
		t.stats.AbortsValidCommit++
		return t.commitAbort()
	}
	for _, we := range t.writeLog {
		m := we.mask
		for m != 0 {
			i := uint(bits.TrailingZeros64(m))
			t.e.heap[we.base+stm.Addr(i)].Store(we.vals[i])
			m &= m - 1
		}
		for _, p := range we.overflow {
			t.e.heap[p.addr].Store(p.val)
		}
		t.e.vers[we.idx].Store(ts)
		t.e.owners[we.idx].Store(nil)
	}
	ws := len(t.writeLog)
	t.writeLog = t.writeLog[:0] // ownership transferred; nothing to release
	t.stats.Commits++
	t.stats.ReadsLogged += uint64(len(t.readLog))
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), uint64(ws))
	}
	return true
}

func (t *txn) validate() bool {
	t.stats.Validations++
	t.stats.ValidationReads += uint64(len(t.readLog))
	for i := range t.readLog {
		re := &t.readLog[i]
		if t.e.vers[re.idx].Load() != re.ver {
			return false
		}
		if we := t.e.owners[re.idx].Load(); we != nil && we.owner.Load() != t {
			return false
		}
	}
	return true
}

func (t *txn) extend() bool {
	ts := t.e.clock.Load()
	if t.validate() {
		t.validTS = ts
		return true
	}
	return false
}

func (t *txn) newEntry(idx uint32, base stm.Addr) *wEntry {
	if t.poolIdx == len(t.pool) {
		t.pool = append(t.pool, &wEntry{vals: make([]stm.Word, t.e.stripe)})
	}
	we := t.pool[t.poolIdx]
	t.poolIdx++
	we.owner.Store(t)
	we.idx = idx
	we.base = base
	we.mask = 0
	we.overflow = we.overflow[:0]
	return we
}

func (we *wEntry) set(a stm.Addr, v stm.Word) {
	if off := a - we.base; off < stm.Addr(len(we.vals)) {
		we.mask |= 1 << off
		we.vals[off] = v
		return
	}
	for i := range we.overflow {
		if we.overflow[i].addr == a {
			we.overflow[i].val = v
			return
		}
	}
	we.overflow = append(we.overflow, wsPair{addr: a, val: v})
}

// get returns the buffered value for a, or ok=false when this entry holds
// no write for it.
func (we *wEntry) get(a stm.Addr) (stm.Word, bool) {
	if off := a - we.base; off < stm.Addr(len(we.vals)) {
		if we.mask&(1<<off) != 0 {
			return we.vals[off], true
		}
		return 0, false
	}
	for i := range we.overflow {
		if we.overflow[i].addr == a {
			return we.overflow[i].val, true
		}
	}
	return 0, false
}

// AllocWords implements stm.Tx.
func (t *txn) AllocWords(n uint32) stm.Addr { return t.e.arena.Alloc(n) }

// ReadField implements stm.Tx (object-over-words wrapper).
func (t *txn) ReadField(h stm.Handle, field uint32) stm.Word {
	return t.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx.
func (t *txn) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(t.Load(stm.Addr(h) + field))
}

// WriteField implements stm.Tx.
func (t *txn) WriteField(h stm.Handle, field uint32, v stm.Word) {
	t.Store(stm.Addr(h)+field, v)
}

// WriteRef implements stm.Tx.
func (t *txn) WriteRef(h stm.Handle, field uint32, ref stm.Handle) {
	t.Store(stm.Addr(h)+field, stm.Word(ref))
}

// NewObject implements stm.Tx.
func (t *txn) NewObject(fields uint32) stm.Handle {
	return stm.Handle(t.e.arena.Alloc(fields))
}

// SupportsWordAPI reports the word-API capability (stm.SupportsWordAPI).
func (e *Engine) SupportsWordAPI() bool { return true }

// roTx is the transaction view Begin returns for declared read-only
// mode; see the swisstm counterpart for the rationale. Write methods are
// unreachable through TxRO and panic as defense in depth.
type roTx struct{ t *txn }

const errROWrite = "tinystm: write inside a declared read-only transaction"

// Load implements stm.Tx on the read-only view.
func (r *roTx) Load(a stm.Addr) stm.Word {
	v, ok := r.t.loadRO(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// ReadField implements stm.Tx on the read-only view.
func (r *roTx) ReadField(h stm.Handle, field uint32) stm.Word {
	return r.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx on the read-only view.
func (r *roTx) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(r.Load(stm.Addr(h) + field))
}

// Restart implements stm.Tx on the read-only view.
func (r *roTx) Restart() { r.t.Restart() }

func (r *roTx) Store(stm.Addr, stm.Word)                { panic(errROWrite) }
func (r *roTx) AllocWords(uint32) stm.Addr              { panic(errROWrite) }
func (r *roTx) WriteField(stm.Handle, uint32, stm.Word) { panic(errROWrite) }
func (r *roTx) WriteRef(stm.Handle, uint32, stm.Handle) { panic(errROWrite) }
func (r *roTx) NewObject(uint32) stm.Handle             { panic(errROWrite) }

var _ stm.STM = (*Engine)(nil)
var _ stm.Thread = (*txn)(nil)
var _ stm.Tx = (*txn)(nil)
var _ stm.Tx = (*roTx)(nil)
