package tinystm

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

// TestAbortPath runs the two-tier abort-delivery conformance suite
// (DESIGN.md §8): TinySTM's commit-time validation failures must return
// through the checked path; encounter-time lock conflicts and Restart
// keep unwinding; user panics propagate with the owner locks released.
func TestAbortPath(t *testing.T) {
	mk := func(unwind bool) func() stm.STM {
		return func() stm.STM {
			return New(Config{ArenaWords: 1 << 16, TableBits: 10, BackoffUnit: 1, UnwindAborts: unwind})
		}
	}
	stmtest.AbortPathSuite(t, mk(false), mk(true), stmtest.ShapeReadValidation)
}
