package tinystm

import (
	"testing"

	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyState is the allocation-regression gate of
// DESIGN.md §7: warm transactions must not allocate.
func TestZeroAllocSteadyState(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10})
	stmtest.ZeroAllocSteadyState(t, e, true, true)
}
