package tinystm

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

func newEngine() stm.STM {
	return New(Config{ArenaWords: 1 << 16, TableBits: 12})
}

func TestConformance(t *testing.T) {
	stmtest.Run(t, newEngine, stmtest.Options{WordAPI: true})
}

func TestConformanceGranularities(t *testing.T) {
	for _, g := range []uint{0, 2, 6} {
		g := g
		t.Run(map[uint]string{0: "1word", 2: "4words", 6: "64words"}[g], func(t *testing.T) {
			stmtest.Run(t, func() stm.STM {
				return New(Config{ArenaWords: 1 << 16, TableBits: 10, StripeWords: 1 << g})
			}, stmtest.Options{WordAPI: true})
		})
	}
}

func TestEagerAcquireLocksAtEncounter(t *testing.T) {
	// The distinctive TinySTM behaviour: a store takes the stripe lock
	// immediately, in the middle of the transaction body.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(1) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.Store(base, 5)
		if e.owners[e.stripeIdx(base)].Load() == nil {
			t.Fatal("eager engine did not lock the stripe at encounter time")
		}
	})
	// And releases it at commit.
	if e.owners[e.stripeIdx(base)].Load() != nil {
		t.Fatal("stripe lock leaked past commit")
	}
}

func TestTimestampExtension(t *testing.T) {
	// A transaction reading a location updated after its start must be
	// able to extend (no intervening conflicting writes) and commit.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th0 := e.NewThread(0)
	th1 := e.NewThread(1)
	var a, b stm.Addr
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		a = tx.AllocWords(1)
		b = tx.AllocWords(64) // separate stripe region
	})
	aborted := false
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		_ = tx.Load(a)
		// Another thread commits to an unrelated stripe, advancing the
		// clock past our snapshot.
		stm.AtomicVoid(th1, func(tx2 stm.Tx) { tx2.Store(b+32, 1) })
		// Reading the updated location forces an extension, which must
		// succeed since our read set (only a) is untouched.
		_ = tx.Load(b + 32)
	})
	if aborted {
		t.Fatal("extension should have succeeded")
	}
	if s := th0.Stats(); s.AbortsValid != 0 {
		t.Fatalf("validation aborts = %d, want 0", s.AbortsValid)
	}
}
