// Package wal is an append-only, checksummed, length-prefixed commit
// log with group commit and crash recovery (DESIGN.md §12).
//
// Frame layout (little-endian):
//
//	[ len u32 | crc u32 | lsn u64 | payload len bytes ]
//
// len counts only the payload. crc is CRC32C (Castagnoli) over the 8
// LSN bytes followed by the payload, so neither the sequence number
// nor the record can be silently corrupted. LSNs start at 1 and
// increase by exactly 1 per frame; a gap means a missing or reordered
// record and recovery treats it as corruption.
//
// Frames live in segment files named wal-<firstLSN as 16 hex>.seg,
// each starting with an 8-byte magic. The writer rotates to a new
// segment once the current one exceeds Options.SegmentBytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// frameHdrLen is the fixed frame header: len + crc + lsn.
	frameHdrLen = 4 + 4 + 8
	// MaxRecord bounds a single payload; anything larger in a decode
	// is corruption, not a record.
	MaxRecord = 1 << 20
)

// segMagic opens every segment file. The trailing '1' is the format
// version.
var segMagic = []byte("swtmwal1")

// SegMagicLen is the length of the segment-file magic header.
const SegMagicLen = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrTorn reports a frame cut off mid-record: a clean crash tail.
	ErrTorn = errors.New("wal: torn frame")
	// ErrCorrupt reports a frame that is structurally present but
	// wrong: bad checksum, oversized length, or an LSN gap.
	ErrCorrupt = errors.New("wal: corrupt frame")
	// ErrClosed reports an append to a closed writer.
	ErrClosed = errors.New("wal: writer closed")
)

// AppendFrame appends one encoded frame to dst and returns the
// extended slice.
func AppendFrame(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame in b. payload aliases b. rest
// is the remainder after the frame. It never panics on arbitrary
// input: a short buffer yields ErrTorn, a checksum mismatch or an
// impossible length yields ErrCorrupt.
func DecodeFrame(b []byte) (lsn uint64, payload, rest []byte, err error) {
	if len(b) < frameHdrLen {
		return 0, nil, nil, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > MaxRecord {
		return 0, nil, nil, ErrCorrupt
	}
	end := frameHdrLen + int(plen)
	if len(b) < end {
		return 0, nil, nil, ErrTorn
	}
	wantCRC := binary.LittleEndian.Uint32(b[4:8])
	crc := crc32.Update(0, castagnoli, b[8:end])
	if crc != wantCRC {
		return 0, nil, nil, ErrCorrupt
	}
	lsn = binary.LittleEndian.Uint64(b[8:16])
	return lsn, b[frameHdrLen:end], b[end:], nil
}

// frameSize is the on-disk size of a frame carrying n payload bytes.
func frameSize(n int) int { return frameHdrLen + n }

// checkPayload validates a payload size before encoding.
func checkPayload(p []byte) error {
	if len(p) > MaxRecord {
		return fmt.Errorf("wal: record %d bytes exceeds MaxRecord %d", len(p), MaxRecord)
	}
	return nil
}
