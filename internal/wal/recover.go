package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// RecoverInfo summarizes a recovery scan.
type RecoverInfo struct {
	Frames   uint64 // frames delivered (the checksum-clean prefix)
	Bytes    uint64 // frame bytes delivered (headers + payloads)
	LastLSN  uint64 // LSN of the last delivered frame; 0 if none
	Segments int    // segment files visited before stopping
	// Truncated reports that the scan stopped before the physical
	// end of the log: a torn tail, a corrupt frame, or an LSN gap.
	// Everything after the stop point is dead data that Open removes.
	Truncated bool
	// Reason says why the scan stopped early ("" when it didn't).
	Reason string

	// Plumbing for Open: where appends continue and what to repair.
	tailSeg   string // last fully-valid segment name ("" if none)
	tailSize  int64  // its byte length
	truncSeg  string // torn/corrupt segment to truncate ("" if none)
	truncSize int64  // keep this many bytes of truncSeg
	stale     []string
}

type segRef struct {
	name  string
	first uint64
}

// listSegments returns the well-formed segment files in dir in LSN
// order. Non-segment files are ignored. A missing dir is an empty
// log.
func listSegments(fs FS, dir string) ([]segRef, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segRef
	for _, n := range names {
		if first, ok := parseSegmentName(n); ok {
			segs = append(segs, segRef{n, first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Recover scans the log in dir, verifying checksums and LSN
// continuity, and calls fn for every frame of the longest clean
// prefix. It stops — without error — at the first torn frame, bad
// checksum, or LSN discontinuity; everything before the stop point
// has been delivered, nothing after it ever will be. A non-nil error
// reports an I/O failure or an fn failure, not log corruption.
//
// fn may be nil to scan without replaying. The payload passed to fn
// aliases the segment read buffer; fn must not retain it.
func Recover(fs FS, dir string, fn func(lsn uint64, payload []byte) error) (RecoverInfo, error) {
	var info RecoverInfo
	segs, err := listSegments(fs, dir)
	if err != nil {
		return info, err
	}
	if len(segs) > 0 && segs[0].first != 1 {
		return info, fmt.Errorf("wal: first segment %s starts at LSN %d, want 1 (wrong directory?)",
			segs[0].name, segs[0].first)
	}
	next := uint64(1)
	stop := func(i int, name string, keep int64, reason string) {
		info.Truncated = true
		info.Reason = reason
		info.truncSeg = name
		info.truncSize = keep
		for _, s := range segs[i+1:] {
			info.stale = append(info.stale, s.name)
		}
	}
	for i, seg := range segs {
		if seg.first != next {
			// A gap at a segment boundary: the previous segment is
			// complete, this one claims a future LSN. The clean
			// prefix ends here; this segment and its successors are
			// unreachable.
			stop(i-1, "", 0, fmt.Sprintf("segment %s starts at LSN %d, want %d", seg.name, seg.first, next))
			return info, nil
		}
		data, err := fs.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return info, err
		}
		if len(data) < SegMagicLen || !bytes.Equal(data[:SegMagicLen], segMagic) {
			stop(i, seg.name, 0, fmt.Sprintf("segment %s: bad or torn magic header", seg.name))
			return info, nil
		}
		b := data[SegMagicLen:]
		for len(b) > 0 {
			lsn, payload, rest, err := DecodeFrame(b)
			if err != nil {
				stop(i, seg.name, int64(len(data)-len(b)), fmt.Sprintf("segment %s at offset %d: %v", seg.name, len(data)-len(b), err))
				return info, nil
			}
			if lsn != next {
				stop(i, seg.name, int64(len(data)-len(b)), fmt.Sprintf("segment %s at offset %d: LSN %d, want %d", seg.name, len(data)-len(b), lsn, next))
				return info, nil
			}
			if fn != nil {
				if err := fn(lsn, payload); err != nil {
					return info, err
				}
			}
			info.Frames++
			info.Bytes += uint64(frameSize(len(payload)))
			info.LastLSN = lsn
			next++
			b = rest
		}
		info.Segments++
		info.tailSeg = seg.name
		info.tailSize = int64(len(data))
	}
	return info, nil
}

// Open recovers the log in opts.Dir (truncating any torn tail and
// removing dead segments past it), then returns a Writer appending
// after the last clean frame. The RecoverInfo describes what the
// scan found; pair Open with a prior Recover call to replay state.
func Open(opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	info, err := Recover(fs, opts.Dir, nil)
	if err != nil {
		return nil, err
	}

	tailSeg, tailSize := info.tailSeg, info.tailSize
	if info.Truncated {
		// Repair: cut the torn segment back to its clean prefix (or
		// remove it outright if not even the magic survived), and
		// delete every segment past the stop point.
		if info.truncSeg != "" {
			p := filepath.Join(opts.Dir, info.truncSeg)
			if info.truncSize > 0 {
				if err := fs.Truncate(p, info.truncSize); err != nil {
					return nil, err
				}
				tailSeg, tailSize = info.truncSeg, info.truncSize
			} else if err := fs.Remove(p); err != nil {
				return nil, err
			}
		}
		for _, s := range info.stale {
			if err := fs.Remove(filepath.Join(opts.Dir, s)); err != nil {
				return nil, err
			}
		}
		if err := fs.SyncDir(opts.Dir); err != nil {
			return nil, err
		}
	}

	w := &Writer{
		opts:       opts,
		fs:         fs,
		m:          opts.Metrics,
		nextPub:    1,
		parkmap:    map[uint64]parked{},
		nextLSN:    info.LastLSN + 1,
		writtenLSN: info.LastLSN,
		notify:     make(chan struct{}, 1),
		quit:       make(chan struct{}),
		exited:     make(chan struct{}),
	}
	if tailSeg == "" {
		seg, err := createSegment(fs, opts.Dir, w.nextLSN)
		if err != nil {
			return nil, err
		}
		w.seg = seg
		w.segBytes = SegMagicLen
	} else {
		seg, err := fs.OpenAppend(filepath.Join(opts.Dir, tailSeg))
		if err != nil {
			return nil, err
		}
		w.seg = seg
		w.segBytes = tailSize
	}
	w.m.Recovered.Add(info.Frames)
	go w.run()
	return w, nil
}
