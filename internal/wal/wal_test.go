package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *Writer {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

// collect recovers dir and returns the info plus copied payloads.
func collect(t *testing.T, fs FS, dir string) (RecoverInfo, [][]byte) {
	t.Helper()
	if fs == nil {
		fs = OSFS{}
	}
	var payloads [][]byte
	info, err := Recover(fs, dir, func(lsn uint64, p []byte) error {
		if lsn != uint64(len(payloads))+1 {
			t.Fatalf("recover delivered LSN %d, want %d", lsn, len(payloads)+1)
		}
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return info, payloads
}

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, Sync: SyncGroup, MaxWait: time.Millisecond})
	const n = 50
	for i := 1; i <= n; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := w.LastLSN(); got != n {
		t.Fatalf("LastLSN = %d, want %d", got, n)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, got := collect(t, nil, dir)
	if info.Truncated || info.Frames != n || info.LastLSN != n {
		t.Fatalf("recover info = %+v, want %d clean frames", info, n)
	}
	for i := 1; i <= n; i++ {
		if !bytes.Equal(got[i-1], payload(i)) {
			t.Fatalf("frame %d = %q, want %q", i, got[i-1], payload(i))
		}
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir})
	for i := 1; i <= 10; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	w = openTest(t, Options{Dir: dir})
	for i := 11; i <= 20; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	info, got := collect(t, nil, dir)
	if info.Frames != 20 {
		t.Fatalf("frames = %d, want 20 (info %+v)", info.Frames, info)
	}
	for i := range got {
		if !bytes.Equal(got[i], payload(i+1)) {
			t.Fatalf("frame %d = %q", i+1, got[i])
		}
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	const n = 100
	for i := 1; i <= n; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	info, got := collect(t, nil, dir)
	if info.Frames != n || info.Segments != len(segs) || info.Truncated {
		t.Fatalf("recover info = %+v over %d segments", info, len(segs))
	}
	if !bytes.Equal(got[n-1], payload(n)) {
		t.Fatalf("last frame = %q", got[n-1])
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: garbage at the end of the segment.
	segs, _ := listSegments(OSFS{}, dir)
	p := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe})
	f.Close()

	info, _ := collect(t, nil, dir)
	if !info.Truncated || info.Frames != 5 {
		t.Fatalf("recover of torn log = %+v, want 5 clean frames + truncated", info)
	}

	// Open repairs the tail and appends continue cleanly after it.
	w = openTest(t, Options{Dir: dir})
	if err := w.Append(payload(6)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	info, got := collect(t, nil, dir)
	if info.Truncated || info.Frames != 6 {
		t.Fatalf("post-repair recover = %+v, want 6 clean frames", info)
	}
	if !bytes.Equal(got[5], payload(6)) {
		t.Fatalf("frame 6 = %q", got[5])
	}
}

func TestBitFlipStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir})
	for i := 1; i <= 10; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(OSFS{}, dir)
	p := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(p)
	// Flip one bit inside the 4th frame's payload.
	off := SegMagicLen + 3*frameSize(len(payload(1))) + frameHdrLen + 2
	data[off] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	info, got := collect(t, nil, dir)
	if !info.Truncated || info.Frames != 3 {
		t.Fatalf("recover after bit flip = %+v, want exactly 3 clean frames", info)
	}
	for i := range got {
		if !bytes.Equal(got[i], payload(i+1)) {
			t.Fatalf("clean prefix frame %d = %q", i+1, got[i])
		}
	}
}

func TestOutOfOrderPublishKeepsTicketOrder(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, Sync: SyncGroup, MaxWait: time.Millisecond})
	t1, t2, t3 := w.Reserve(), w.Reserve(), w.Reserve()

	var wg sync.WaitGroup
	pub := func(tk Ticket, i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Publish(tk, payload(i)); err != nil {
				t.Errorf("publish %d: %v", i, err)
			}
		}()
	}
	pub(t3, 3) // arrives first, must be held back
	time.Sleep(5 * time.Millisecond)
	pub(t2, 2)
	time.Sleep(5 * time.Millisecond)
	pub(t1, 1)
	wg.Wait()
	w.Close()

	_, got := collect(t, nil, dir)
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3", len(got))
	}
	for i := 1; i <= 3; i++ {
		if !bytes.Equal(got[i-1], payload(i)) {
			t.Fatalf("LSN %d holds %q, want %q (ticket order violated)", i, got[i-1], payload(i))
		}
	}
}

func TestAbandonUnblocksSequencer(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, Sync: SyncGroup, MaxWait: time.Millisecond})
	t1, t2 := w.Reserve(), w.Reserve()

	done := make(chan error, 1)
	go func() { done <- w.Publish(t2, payload(2)) }()
	select {
	case err := <-done:
		t.Fatalf("publish of t2 completed before t1 was finished: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Abandon(t1)
	if err := <-done; err != nil {
		t.Fatalf("publish after abandon: %v", err)
	}
	w.Close()

	info, got := collect(t, nil, dir)
	if info.Frames != 1 || !bytes.Equal(got[0], payload(2)) {
		t.Fatalf("recover = %+v %q, want 1 frame from t2 at LSN 1", info, got)
	}
}

func TestSyncNoneAcksImmediatelyAndSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, Sync: SyncNone})
	for i := 1; i <= 25; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Everything admitted before Sync must already be on disk, before
	// Close.
	info, _ := collect(t, nil, dir)
	if info.Frames != 25 || info.Truncated {
		t.Fatalf("recover after Sync = %+v, want 25 clean frames", info)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedShortWritePoisonsWriterAndKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	// Write call 1 = magic of segment 1. Let two batches through,
	// tear the third.
	ffs := &FaultFS{Base: OSFS{}, FailWrite: 4, ShortWrite: true}
	w := openTest(t, Options{Dir: dir, FS: ffs, Sync: SyncAlways})
	var acked int
	var failed bool
	for i := 1; i <= 10; i++ {
		err := w.Append(payload(i))
		if err == nil {
			if failed {
				t.Fatalf("append %d succeeded after a write failure (sticky error lost)", i)
			}
			acked++
			continue
		}
		failed = true
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("append %d: err %v, want the sticky injected error", i, err)
		}
	}
	if !failed {
		t.Fatal("fault never fired")
	}
	w.Close()

	// Recovery must deliver exactly the acked frames, then stop at the
	// torn half-frame without error.
	info, got := collect(t, nil, dir)
	if int(info.Frames) != acked {
		t.Fatalf("recovered %d frames, acked %d (info %+v)", info.Frames, acked, info)
	}
	if !info.Truncated {
		t.Fatalf("torn write not detected: %+v", info)
	}
	for i := range got {
		if !bytes.Equal(got[i], payload(i+1)) {
			t.Fatalf("frame %d = %q", i+1, got[i])
		}
	}
}

func TestInjectedFsyncErrorFailsPublish(t *testing.T) {
	dir := t.TempDir()
	// Sync call 1 = segment creation. Fail the second fsync (first
	// batch commit).
	ffs := &FaultFS{Base: OSFS{}, FailSync: 2}
	w := openTest(t, Options{Dir: dir, FS: ffs, Sync: SyncAlways})
	if err := w.Append(payload(1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append under fsync fault: %v, want ErrInjected", err)
	}
	if err := w.Append(payload(2)); err == nil {
		t.Fatal("append after sticky fsync failure succeeded")
	}
	w.Close()
}

func TestSegmentGapStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 60; i++ {
		if err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(OSFS{}, dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Delete a middle segment: recovery keeps the prefix before the
	// gap and never replays past it.
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	wantFrames := segs[1].first - 1
	info, _ := collect(t, nil, dir)
	if !info.Truncated || info.Frames != wantFrames {
		t.Fatalf("recover with gap = %+v, want %d frames then stop", info, wantFrames)
	}
	// Open removes the unreachable tail and keeps working.
	w = openTest(t, Options{Dir: dir})
	if err := w.Append([]byte("after-gap")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	info, got := collect(t, nil, dir)
	if info.Truncated || info.Frames != wantFrames+1 {
		t.Fatalf("post-repair recover = %+v", info)
	}
	if !bytes.Equal(got[len(got)-1], []byte("after-gap")) {
		t.Fatalf("tail frame = %q", got[len(got)-1])
	}
}

func TestConcurrentPublishAbandonStress(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, Options{Dir: dir, Sync: SyncGroup, MaxWait: 100 * time.Microsecond, SegmentBytes: 4096})
	const workers = 8
	const perWorker = 100
	published := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tk := w.Reserve()
				if (g+i)%5 == 0 { // a fifth of attempts "abort"
					w.Abandon(tk)
					continue
				}
				if err := w.Publish(tk, payload(int(tk.seq))); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				published[g] = append(published[g], tk.seq)
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var want int
	for _, p := range published {
		want += len(p)
	}
	info, got := collect(t, nil, dir)
	if int(info.Frames) != want || info.Truncated {
		t.Fatalf("recovered %d frames, want %d (info %+v)", info.Frames, want, info)
	}
	// Frames must appear in strictly increasing ticket order: the
	// payload encodes the ticket seq.
	var prev int
	for i, p := range got {
		var seq int
		if _, err := fmt.Sscanf(string(p), "record-%04d", &seq); err != nil {
			t.Fatalf("frame %d: unexpected payload %q", i+1, p)
		}
		if seq <= prev {
			t.Fatalf("frame %d: ticket %d out of order after %d", i+1, seq, prev)
		}
		prev = seq
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
	}{{"always", SyncAlways}, {"group", SyncGroup}, {"none", SyncNone}} {
		got, err := ParseSyncMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("SyncMode(%q).String() = %q", tc.in, got.String())
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("ParseSyncMode accepted garbage")
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, lsn := range []uint64{1, 255, 1 << 40, ^uint64(0)} {
		name := segmentName(lsn)
		got, ok := parseSegmentName(name)
		if !ok || got != lsn {
			t.Fatalf("parseSegmentName(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{"wal-.seg", "wal-00000000000000zz.seg", "foo", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName(%q) accepted", bad)
		}
	}
}

func TestWrongDirectoryRefused(t *testing.T) {
	dir := t.TempDir()
	// A segment claiming to start at LSN 7 with no predecessors is not
	// a recoverable log — refuse loudly rather than silently erase.
	if err := os.WriteFile(filepath.Join(dir, segmentName(7)), segMagic, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(OSFS{}, dir, nil); err == nil {
		t.Fatal("Recover accepted a log with a missing prefix")
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a log with a missing prefix")
	}
}
