package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the write-side surface the log writer needs from a segment
// file. It is deliberately tiny so a fault-injecting implementation
// can sit between the writer and the disk (FaultFS below) — the
// errorfs pattern: the durability logic is tested against injected
// short writes and fsync failures, not just the happy path.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// FS abstracts the directory operations of the log: segment creation,
// reopening for append, whole-segment reads for recovery, torn-tail
// truncation, and directory fsync (which is what makes a freshly
// created segment file itself durable on POSIX systems).
type FS interface {
	// Create creates (or truncates) a new segment file.
	Create(path string) (File, error)
	// OpenAppend opens an existing segment for appending.
	OpenAppend(path string) (File, error)
	// ReadFile reads a whole segment.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts path down to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes a file.
	Remove(path string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory entry metadata.
	SyncDir(dir string) error
}

// OSFS is the production FS: the real filesystem.
type OSFS struct{}

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (OSFS) Remove(path string) error               { return os.Remove(path) }
func (OSFS) MkdirAll(dir string) error              { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is the error every FaultFS-injected failure returns, so
// tests can assert the failure they provoked is the one they observed.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and injects write-path faults at
// deterministic call counts — the errorfs-style seam the durability
// tests drive. Faults available:
//
//   - FailWrite n: the n-th Write call (1-based, counted across every
//     file opened through this FS) fails with ErrInjected. With
//     ShortWrite set, half the buffer is persisted first — a torn
//     write: the tail of the log now ends mid-frame, exactly the
//     state recovery must truncate.
//   - FailSync n: the n-th Sync call fails with ErrInjected (the
//     data may or may not be durable — the writer must treat the
//     batch as not acknowledged either way).
//
// Zero values disable a fault. Counters keep counting after a fault
// fires, but each fault fires at most once.
type FaultFS struct {
	Base FS

	mu         sync.Mutex
	writeCalls int
	syncCalls  int

	FailWrite  int
	ShortWrite bool
	FailSync   int
}

func (f *FaultFS) Create(path string) (File, error) {
	file, err := f.Base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	file, err := f.Base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.Base.ReadFile(path) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Base.ReadDir(dir) }
func (f *FaultFS) Truncate(path string, n int64) error  { return f.Base.Truncate(path, n) }
func (f *FaultFS) Remove(path string) error             { return f.Base.Remove(path) }
func (f *FaultFS) MkdirAll(dir string) error            { return f.Base.MkdirAll(dir) }
func (f *FaultFS) SyncDir(dir string) error             { return f.Base.SyncDir(dir) }

type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	fs.writeCalls++
	inject := fs.FailWrite != 0 && fs.writeCalls == fs.FailWrite
	short := fs.ShortWrite
	fs.mu.Unlock()
	if inject {
		if short && len(p) > 1 {
			n, _ := ff.f.Write(p[:len(p)/2]) // torn: a prefix reaches the file
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	fs.syncCalls++
	inject := fs.FailSync != 0 && fs.syncCalls == fs.FailSync
	fs.mu.Unlock()
	if inject {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// segmentName formats the canonical segment file name for its first
// LSN: wal-<16 hex digits>.seg, so lexicographic name order is LSN
// order.
func segmentName(firstLSN uint64) string {
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[firstLSN&0xf]
		firstLSN >>= 4
	}
	return "wal-" + string(buf[:]) + ".seg"
}

// parseSegmentName inverts segmentName, reporting ok=false for any
// file that is not a well-formed segment name.
func parseSegmentName(name string) (firstLSN uint64, ok bool) {
	if len(name) != len("wal-")+16+len(".seg") ||
		name[:4] != "wal-" || name[len(name)-4:] != ".seg" {
		return 0, false
	}
	for _, c := range []byte(name[4 : 4+16]) {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		firstLSN = firstLSN<<4 | d
	}
	return firstLSN, true
}

func segmentPath(dir string, firstLSN uint64) string {
	return filepath.Join(dir, segmentName(firstLSN))
}
