package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swisstm/internal/obs"
)

// SyncMode selects the durability policy of a Writer.
type SyncMode uint8

const (
	// SyncGroup fsyncs batches: after the first pending frame the
	// writer waits up to Options.MaxWait (or until Options.BatchSize
	// frames are pending) before issuing one buffered write and one
	// fsync for the whole group. Every waiter is released only after
	// the fsync covering its frame returns.
	SyncGroup SyncMode = iota
	// SyncAlways adds no batching window: every pending group is
	// written and fsynced immediately. Concurrent publishers may
	// still coalesce into one fsync, but no publisher ever waits for
	// company.
	SyncAlways
	// SyncNone acknowledges before durability: Publish enqueues the
	// frame and returns, and the log goroutine writes it out without
	// fsync. A crash can lose acked ops; recovery still yields a
	// clean prefix.
	SyncNone
)

// ParseSyncMode parses the -fsync flag values: always, group, none.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want always, group, or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// Metrics is the writer's observability surface (DESIGN.md §12). All
// fields must be non-nil; NewMetrics wires them into a Registry under
// the promised names.
type Metrics struct {
	AppendNs    *obs.AtomicHist // Publish call → frame durable (waiting modes only)
	FsyncNs     *obs.AtomicHist // per-batch fsync duration
	BatchFrames *obs.AtomicHist // frames coalesced per batch write
	Bytes       *obs.Counter    // frame bytes appended
	Frames      *obs.Counter    // frames appended
	Recovered   *obs.Counter    // frames replayed by recovery at open
}

// NewMetrics registers the WAL metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AppendNs:    reg.Histogram("wal_append_ns"),
		FsyncNs:     reg.Histogram("wal_fsync_ns"),
		BatchFrames: reg.Histogram("wal_batch_size"),
		Bytes:       reg.Counter("wal_bytes_total"),
		Frames:      reg.Counter("wal_frames_total"),
		Recovered:   reg.Counter("wal_recovered_frames_total"),
	}
}

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if absent.
	Dir string
	// FS defaults to OSFS{}. Tests substitute a FaultFS.
	FS FS
	// Sync is the durability policy; default SyncGroup.
	Sync SyncMode
	// SegmentBytes triggers rotation once a segment reaches this
	// size; default 64 MiB. Segments may overshoot by one batch.
	SegmentBytes int64
	// BatchSize caps the group-commit window: once this many frames
	// are pending the batch is written without waiting out MaxWait.
	// Default 64.
	BatchSize int
	// MaxWait is the group-commit window for SyncGroup: how long the
	// log goroutine waits for company after the first pending frame.
	// Default 200µs; ignored by SyncAlways and SyncNone.
	MaxWait time.Duration
	// Metrics defaults to a private unexported set.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.Sync != SyncGroup {
		o.MaxWait = 0
	}
	if o.Metrics == nil {
		o.Metrics = NewMetrics(obs.NewRegistry())
	}
	return o
}

// Ticket is a reserved slot in the log's total order. See Reserve.
// The zero Ticket is invalid.
type Ticket struct{ seq uint64 }

// parked is a publish (or abandon) that arrived before its
// predecessors in ticket order; it is admitted when the gap closes.
type parked struct {
	abandoned bool
	payload   []byte     // copied; nil when abandoned
	done      chan error // non-nil when the publisher waits for durability
}

// Writer appends frames durably, in ticket order, via a single log
// goroutine that group-commits pending frames. See DESIGN.md §12 for
// why ticket order matters: tickets are reserved inside transaction
// bodies, so ticket order agrees with the engines' commit order for
// conflicting transactions, and emitting frames strictly in ticket
// order keeps the durable log a prefix of the acknowledged history.
type Writer struct {
	opts Options
	fs   FS
	m    *Metrics

	tickets atomic.Uint64 // last reserved ticket seq

	mu       sync.Mutex
	err      error // sticky: first write/sync failure; poisons the writer
	closed   bool
	nextPub  uint64 // ticket seq the sequencer admits next
	parkmap  map[uint64]parked
	nextLSN  uint64
	pend     []byte // encoded frames admitted but not yet stolen by the log goroutine
	pendN    int
	waiters  []chan error // one per pending frame whose publisher waits
	syncReqs []chan error // Sync barriers

	notify chan struct{} // kicks the log goroutine; capacity 1
	quit   chan struct{} // closed by Close
	exited chan struct{} // closed when the log goroutine returns

	// Segment state, owned by the log goroutine after Open returns.
	seg        File
	segBytes   int64
	writtenLSN uint64 // last LSN handed to the segment file

	spare        []byte
	spareWaiters []chan error

	closeErr error
}

// Reserve draws the next slot in the log's total order. Every
// reserved ticket MUST be finished exactly once — by Publish or by
// Abandon — or the log stalls behind the gap. Reserve is an atomic
// add, cheap enough to call inside a transaction body.
func (w *Writer) Reserve() Ticket { return Ticket{w.tickets.Add(1)} }

// Abandon cancels a reserved ticket (aborted attempt, failed
// operation). The sequencer skips its slot; no frame is written.
func (w *Writer) Abandon(t Ticket) {
	w.mu.Lock()
	if w.closed || w.err != nil {
		w.mu.Unlock()
		return
	}
	switch {
	case t.seq == w.nextPub:
		w.nextPub++
		w.drainParkedLocked()
	case t.seq > w.nextPub:
		w.parkmap[t.seq] = parked{abandoned: true}
	default:
		w.mu.Unlock()
		panic("wal: ticket finished twice")
	}
	w.mu.Unlock()
	// The drain may have admitted parked frames whose publishers are
	// already waiting; wake the log goroutine for them.
	w.kick()
}

// Publish writes payload as the frame for ticket t. Under SyncAlways
// and SyncGroup it returns once the frame is durable (or the writer
// failed); under SyncNone it returns as soon as the frame is
// enqueued. A non-nil error means the frame is NOT acknowledged as
// durable and the caller must not ack its client.
func (w *Writer) Publish(t Ticket, payload []byte) error {
	if err := checkPayload(payload); err != nil {
		w.Abandon(t)
		return err
	}
	wait := w.opts.Sync != SyncNone
	var start time.Time
	if wait {
		start = time.Now()
	}

	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		if err == nil {
			err = ErrClosed
		}
		w.mu.Unlock()
		return err
	}
	var done chan error
	if wait {
		done = make(chan error, 1)
	}
	switch {
	case t.seq == w.nextPub:
		w.nextPub++
		w.admitLocked(payload, done)
		w.drainParkedLocked()
	case t.seq > w.nextPub:
		cp := make([]byte, len(payload))
		copy(cp, payload)
		w.parkmap[t.seq] = parked{payload: cp, done: done}
	default:
		w.mu.Unlock()
		panic("wal: ticket finished twice")
	}
	w.mu.Unlock()
	w.kick()

	if !wait {
		return nil
	}
	err := <-done
	w.m.AppendNs.Record(uint64(time.Since(start)))
	return err
}

// Append reserves, publishes, and returns the durability result —
// the convenience path for callers with no ordering concerns of
// their own (single-goroutine tools, tests).
func (w *Writer) Append(payload []byte) error {
	return w.Publish(w.Reserve(), payload)
}

// admitLocked assigns the next LSN and encodes the frame into the
// pending buffer. Caller holds w.mu and has already advanced nextPub.
func (w *Writer) admitLocked(payload []byte, done chan error) {
	w.pend = AppendFrame(w.pend, w.nextLSN, payload)
	w.nextLSN++
	w.pendN++
	if done != nil {
		w.waiters = append(w.waiters, done)
	}
}

// drainParkedLocked admits every consecutively-parked ticket starting
// at nextPub. Caller holds w.mu.
func (w *Writer) drainParkedLocked() {
	for {
		p, ok := w.parkmap[w.nextPub]
		if !ok {
			return
		}
		delete(w.parkmap, w.nextPub)
		w.nextPub++
		if !p.abandoned {
			w.admitLocked(p.payload, p.done)
		}
	}
}

// kick wakes the log goroutine if it is not already signalled.
func (w *Writer) kick() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// Sync blocks until every frame admitted before the call is written
// and fsynced (even under SyncNone), or returns the sticky error.
func (w *Writer) Sync() error {
	done := make(chan error, 1)
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.syncReqs = append(w.syncReqs, done)
	w.mu.Unlock()
	w.kick()
	return <-done
}

// LastLSN returns the LSN of the last admitted frame (0 if none).
func (w *Writer) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Err returns the sticky failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close drains admitted frames to disk, fsyncs, releases any stuck
// publishers with ErrClosed, and closes the segment. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.closeErr
		w.mu.Unlock()
		<-w.exited
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.exited
	w.mu.Lock()
	err := w.closeErr
	w.mu.Unlock()
	return err
}

// run is the log goroutine: it steals the pending buffer, optionally
// waits out the group-commit window, performs one buffered write and
// one fsync per batch, and releases the batch's waiters.
func (w *Writer) run() {
	defer close(w.exited)
	for {
		select {
		case <-w.notify:
		case <-w.quit:
			w.finish()
			return
		}
		if w.opts.MaxWait > 0 {
			w.waitWindow()
		}
		w.flushPending(false)
	}
}

// waitWindow holds the batch open for MaxWait after the first pending
// frame, closing early at BatchSize frames or on shutdown.
func (w *Writer) waitWindow() {
	deadline := time.NewTimer(w.opts.MaxWait)
	defer deadline.Stop()
	for {
		w.mu.Lock()
		full := w.pendN >= w.opts.BatchSize
		w.mu.Unlock()
		if full {
			return
		}
		select {
		case <-deadline.C:
			return
		case <-w.notify:
		case <-w.quit:
			return
		}
	}
}

// flushPending steals and writes one batch. With final set it fsyncs
// even when there are only sync barriers and no frames.
func (w *Writer) flushPending(final bool) {
	w.mu.Lock()
	batch := w.pend
	frames := w.pendN
	waiters := w.waiters
	syncs := w.syncReqs
	w.pend = w.spare[:0]
	w.waiters = w.spareWaiters[:0]
	w.syncReqs = nil
	w.pendN = 0
	failed := w.err
	w.mu.Unlock()

	if failed != nil {
		release(waiters, failed)
		release(syncs, failed)
		return
	}
	var err error
	if frames > 0 {
		err = w.writeBatch(batch, frames, len(syncs) > 0 || final)
	} else if len(syncs) > 0 || final {
		err = w.syncSeg()
	}
	if err != nil {
		w.fail(err)
	}
	release(waiters, err)
	release(syncs, err)
	w.spare = batch[:0]
	w.spareWaiters = waiters[:0]
}

func release(chans []chan error, err error) {
	for _, c := range chans {
		c <- err
	}
}

// writeBatch performs the one-write-one-fsync group commit, rotating
// first if the current segment is full.
func (w *Writer) writeBatch(batch []byte, frames int, forceSync bool) error {
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if _, err := w.seg.Write(batch); err != nil {
		return err
	}
	w.segBytes += int64(len(batch))
	w.writtenLSN += uint64(frames)
	if w.opts.Sync != SyncNone || forceSync {
		if err := w.syncSeg(); err != nil {
			return err
		}
	}
	w.m.Bytes.Add(uint64(len(batch)))
	w.m.Frames.Add(uint64(frames))
	w.m.BatchFrames.Record(uint64(frames))
	return nil
}

func (w *Writer) syncSeg() error {
	t0 := time.Now()
	if err := w.seg.Sync(); err != nil {
		return err
	}
	w.m.FsyncNs.Record(uint64(time.Since(t0)))
	return nil
}

// rotate closes the full segment durably and opens the next one,
// named after the first LSN it will hold.
func (w *Writer) rotate() error {
	if err := w.seg.Sync(); err != nil {
		return err
	}
	if err := w.seg.Close(); err != nil {
		return err
	}
	seg, err := createSegment(w.fs, w.opts.Dir, w.writtenLSN+1)
	if err != nil {
		return err
	}
	w.seg = seg
	w.segBytes = SegMagicLen
	return nil
}

// createSegment creates a segment file with its magic header and
// makes the file itself durable (fsync file + directory).
func createSegment(fs FS, dir string, firstLSN uint64) (File, error) {
	f, err := fs.Create(segmentPath(dir, firstLSN))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// fail records the sticky error and releases everyone stuck behind
// the sequencer: parked publishers and future publishes all see err.
func (w *Writer) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	parkmap := w.parkmap
	w.parkmap = map[uint64]parked{}
	waiters := w.waiters
	w.waiters = nil
	syncs := w.syncReqs
	w.syncReqs = nil
	w.pend = w.pend[:0]
	w.pendN = 0
	w.mu.Unlock()
	for _, p := range parkmap {
		if p.done != nil {
			p.done <- err
		}
	}
	release(waiters, err)
	release(syncs, err)
}

// finish is the shutdown path: drain every admitted frame, release
// parked publishers with ErrClosed, do a final write+fsync, close.
func (w *Writer) finish() {
	for {
		w.flushPending(true)
		w.mu.Lock()
		empty := w.pendN == 0 && len(w.syncReqs) == 0
		parkmap := w.parkmap
		w.parkmap = map[uint64]parked{}
		w.mu.Unlock()
		for _, p := range parkmap {
			if p.done != nil {
				p.done <- ErrClosed
			}
		}
		if empty {
			break
		}
	}
	err := w.seg.Close()
	w.mu.Lock()
	if w.closeErr == nil {
		if w.err != nil {
			w.closeErr = w.err
		} else {
			w.closeErr = err
		}
	}
	w.mu.Unlock()
}
