package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecodeFrame pins that DecodeFrame never panics on arbitrary
// bytes, and that anything it accepts survives a re-encode round
// trip byte for byte.
func FuzzWALDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendFrame(nil, 1, []byte("hello")))
	f.Add(AppendFrame(AppendFrame(nil, 1, []byte("a")), 2, []byte("bb")))
	torn := AppendFrame(nil, 7, []byte("torn-tail-frame"))
	f.Add(torn[:len(torn)-3])
	huge := make([]byte, frameHdrLen)
	huge[3] = 0xff // length field far beyond MaxRecord
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		lsn, payload, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		consumed := data[:len(data)-len(rest)]
		re := AppendFrame(nil, lsn, payload)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, consumed)
		}
	})
}

// FuzzRecoverSegment pins the recovery contract on a single mangled
// segment: never panic, never error on corruption, and always
// deliver a checksum-clean prefix — every delivered frame must be one
// the oracle can independently verify from the file bytes.
func FuzzRecoverSegment(f *testing.F) {
	valid := append([]byte(nil), segMagic...)
	for i := 1; i <= 5; i++ {
		valid = AppendFrame(valid, uint64(i), []byte{byte(i), 0xaa, byte(i)})
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[SegMagicLen+frameHdrLen+1] ^= 0x80 // corrupt frame 1's payload
	f.Add(flipped)
	f.Add(segMagic)
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var delivered int
		info, err := Recover(OSFS{}, dir, func(lsn uint64, payload []byte) error {
			delivered++
			if lsn != uint64(delivered) {
				t.Fatalf("delivered LSN %d at position %d", lsn, delivered)
			}
			// Independently re-verify the frame against the raw file
			// bytes: recovery may only hand out checksum-clean data.
			return nil
		})
		if err != nil {
			t.Fatalf("Recover returned an error on corrupt input: %v", err)
		}
		if int(info.Frames) != delivered {
			t.Fatalf("info.Frames = %d, delivered %d", info.Frames, delivered)
		}
		// The clean prefix must decode from the raw bytes too.
		if len(data) >= SegMagicLen && bytes.Equal(data[:SegMagicLen], segMagic) {
			b := data[SegMagicLen:]
			for i := 0; i < delivered; i++ {
				lsn, _, rest, err := DecodeFrame(b)
				if err != nil || lsn != uint64(i)+1 {
					t.Fatalf("delivered frame %d does not re-decode: lsn %d err %v", i+1, lsn, err)
				}
				b = rest
			}
		} else if delivered != 0 {
			t.Fatalf("delivered %d frames from a segment with no valid magic", delivered)
		}
	})
}
