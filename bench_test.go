// Package swisstm_test holds one testing.B benchmark per figure and table
// of the paper, so `go test -bench=.` exercises every experiment's code
// path at reduced scale. The full-shape sweeps (thread series, long
// measurements) are produced by cmd/paperfigs; DESIGN.md §4 maps each
// benchmark to its figure.
package swisstm_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/rbtree"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/util"
)

// benchParallelBind runs a per-worker-bound operation on all GOMAXPROCS
// workers: bind is called once per worker with its own engine thread
// and private RNG (for workloads whose operations come from pre-bound
// tables, e.g. bench7), and the returned closure runs per iteration.
func benchParallelBind(b *testing.B, e stm.STM, bind func(th stm.Thread, rng *util.Rand) func()) {
	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(tid.Add(1))
		op := bind(e.NewThread(id), util.NewRand(uint64(id)*977+13))
		for pb.Next() {
			op()
		}
	})
}

// benchParallelOp is benchParallelBind for per-call operations.
func benchParallelOp(b *testing.B, e stm.STM, op func(th stm.Thread, rng *util.Rand)) {
	benchParallelBind(b, e, func(th stm.Thread, rng *util.Rand) func() {
		return func() { op(th, rng) }
	})
}

// benchCfg is the scaled-down STMBench7 structure used by benchmarks.
var benchCfg = bench7.Config{Levels: 3, Fanout: 3, CompPool: 32, AtomicPerComp: 10}

func bench7Op(b *testing.B, spec harness.EngineSpec, roPct int) {
	cfg := benchCfg
	cfg.ReadOnlyPct = roPct
	e := spec.New()
	bench := bench7.Setup(e, cfg)
	benchParallelBind(b, e, func(th stm.Thread, rng *util.Rand) func() {
		return bench.NewOps(th, rng).Op
	})
}

// BenchmarkFig2 measures STMBench7 operations per engine and mix
// (Figure 2's quantity is the inverse: operations/second).
func BenchmarkFig2(b *testing.B) {
	for _, mix := range []struct {
		name string
		ro   int
	}{{"read", 90}, {"rw", 60}, {"write", 10}} {
		for _, spec := range []harness.EngineSpec{
			{Kind: "swisstm"}, {Kind: "tinystm"}, {Kind: "tl2"},
			{Kind: "rstm", Manager: "serializer"},
		} {
			b.Run(mix.name+"/"+spec.DisplayName(), func(b *testing.B) {
				bench7Op(b, spec, mix.ro)
			})
		}
	}
}

// BenchmarkFig3 runs each STAMP workload to completion per iteration
// (test scale, 2 workers) on the three word-based engines.
func BenchmarkFig3(b *testing.B) {
	for _, wl := range stamp.Workloads {
		for _, kind := range []string{"swisstm", "tl2", "tinystm"} {
			b.Run(wl+"/"+kind, func(b *testing.B) {
				spec := harness.EngineSpec{Kind: kind}
				for i := 0; i < b.N; i++ {
					app, err := stamp.New(wl, stamp.Test)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := stamp.Run(app, spec.New(), 2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchBoard is a small Lee board: one full routing pass per iteration.
var benchBoard = leetm.GenBoard("bench", 48, 48, 48, 4, 20, 0xfee1)

func leeRun(b *testing.B, spec harness.EngineSpec, board leetm.Board) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var r *leetm.Router
		_, err := harness.MeasureWork(spec,
			func(e stm.STM) error { r = leetm.Setup(e, board); return nil },
			func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
				r.Work(e, th, worker, t, rng)
			}, nil, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 routes the bench board per engine (Figure 4 uses the
// memory/main boards; cmd/paperfigs runs those).
func BenchmarkFig4(b *testing.B) {
	for _, spec := range []harness.EngineSpec{
		{Kind: "swisstm"}, {Kind: "tinystm"}, {Kind: "rstm", Manager: "polka", Label: "RSTM"},
	} {
		b.Run(spec.DisplayName(), func(b *testing.B) { leeRun(b, spec, benchBoard) })
	}
}

func rbOp(b *testing.B, spec harness.EngineSpec, keyRange, updPct int) {
	e := spec.New()
	th0 := e.NewThread(0)
	tree := rbtree.New(th0)
	rng := util.NewRand(3)
	for i := 0; i < keyRange/2; i++ {
		k := stm.Word(rng.Intn(keyRange) + 1)
		stm.AtomicVoid(th0, func(tx stm.Tx) { tree.Insert(tx, k, k) })
	}
	benchParallelOp(b, e, func(th stm.Thread, r *util.Rand) {
		k := stm.Word(r.Intn(keyRange) + 1)
		c := r.Intn(100)
		switch {
		case c < updPct/2:
			stm.Atomic(th, func(tx stm.Tx) bool { return tree.Insert(tx, k, k) })
		case c < updPct:
			stm.Atomic(th, func(tx stm.Tx) bool { return tree.Delete(tx, k) })
		default:
			stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { v, _ := tree.Lookup(tx, k); return v })
		}
	})
}

// BenchmarkFig5 is the red-black tree microbenchmark per engine.
func BenchmarkFig5(b *testing.B) {
	for _, spec := range []harness.EngineSpec{
		{Kind: "swisstm"}, {Kind: "tl2"}, {Kind: "tinystm"},
		{Kind: "rstm", Manager: "polka", Label: "RSTM"},
	} {
		b.Run(spec.DisplayName(), func(b *testing.B) { rbOp(b, spec, 4096, 20) })
	}
}

// BenchmarkFig7 compares eager vs lazy conflict detection on the
// read-dominated STMBench7 mix.
func BenchmarkFig7(b *testing.B) {
	for _, spec := range []harness.EngineSpec{
		{Kind: "tinystm", Label: "eager-tiny"},
		{Kind: "rstm", Acquire: "eager", Label: "eager-rstm"},
		{Kind: "rstm", Acquire: "lazy", Label: "lazy-rstm"},
		{Kind: "tl2", Label: "lazy-tl2"},
	} {
		b.Run(spec.Label, func(b *testing.B) { bench7Op(b, spec, 90) })
	}
}

// BenchmarkFig8 is the irregular Lee-TM variant (R% of transactions
// update the shared object Oc).
func BenchmarkFig8(b *testing.B) {
	for _, r := range []int{0, 5, 20} {
		for _, kind := range []string{"swisstm", "tinystm"} {
			board := benchBoard
			board.IrregularPct = r
			b.Run(kind+"/"+map[int]string{0: "R0", 5: "R5", 20: "R20"}[r], func(b *testing.B) {
				leeRun(b, harness.EngineSpec{Kind: kind}, board)
			})
		}
	}
}

// BenchmarkFig9 compares Polka and Greedy inside RSTM on read-dominated
// STMBench7.
func BenchmarkFig9(b *testing.B) {
	for _, mgr := range []string{"greedy", "polka"} {
		b.Run(mgr, func(b *testing.B) {
			bench7Op(b, harness.EngineSpec{Kind: "rstm", Manager: mgr}, 90)
		})
	}
}

// BenchmarkFig10 compares SwissTM's two-phase CM against plain Greedy on
// the short-transaction microbenchmark.
func BenchmarkFig10(b *testing.B) {
	for _, pol := range []string{"", "greedy"} {
		name := pol
		if name == "" {
			name = "two-phase"
		}
		b.Run(name, func(b *testing.B) {
			rbOp(b, harness.EngineSpec{Kind: "swisstm", Policy: pol}, 4096, 20)
		})
	}
}

// BenchmarkFig11 measures STAMP intruder with and without SwissTM's
// post-abort back-off.
func BenchmarkFig11(b *testing.B) {
	for _, nob := range []bool{false, true} {
		name := "backoff"
		if nob {
			name = "no-backoff"
		}
		b.Run(name, func(b *testing.B) {
			spec := harness.EngineSpec{Kind: "swisstm", NoBackoff: nob}
			for i := 0; i < b.N; i++ {
				app, err := stamp.New("intruder", stamp.Test)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stamp.Run(app, spec.New(), 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 compares the two-phase CM against timid on the
// write-dominated STMBench7 mix (where Figure 12 shows the largest gap).
func BenchmarkFig12(b *testing.B) {
	for _, pol := range []string{"", "timid"} {
		name := pol
		if name == "" {
			name = "two-phase"
		}
		b.Run(name, func(b *testing.B) {
			bench7Op(b, harness.EngineSpec{Kind: "swisstm", Policy: pol}, 10)
		})
	}
}

// BenchmarkFig13 sweeps the lock granularity (words per stripe) on the
// red-black tree; Table 2's comparison points are the 1/4/16-word runs.
func BenchmarkFig13(b *testing.B) {
	for _, g := range []uint{0, 1, 2, 3, 4, 5, 6} {
		b.Run(map[uint]string{0: "1w", 1: "2w", 2: "4w", 3: "8w", 4: "16w", 5: "32w", 6: "64w"}[g],
			func(b *testing.B) {
				rbOp(b, harness.EngineSpec{Kind: "swisstm", StripeWords: 1 << g}, 4096, 20)
			})
	}
}

// BenchmarkTable1 measures the six design-choice combinations of Table 1
// on the read-write STMBench7 mix.
func BenchmarkTable1(b *testing.B) {
	rows := []struct {
		name string
		spec harness.EngineSpec
	}{
		{"lazy-inv-any", harness.EngineSpec{Kind: "rstm", Acquire: "lazy"}},
		{"eager-vis-any", harness.EngineSpec{Kind: "rstm", Reads: "visible"}},
		{"eager-inv-polka", harness.EngineSpec{Kind: "rstm", Manager: "polka"}},
		{"eager-inv-timid", harness.EngineSpec{Kind: "rstm", Manager: "timid"}},
		{"mixed-inv-timid", harness.EngineSpec{Kind: "swisstm", Policy: "timid"}},
		{"mixed-inv-2phase", harness.EngineSpec{Kind: "swisstm"}},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) { bench7Op(b, row.spec, 60) })
	}
}

// BenchmarkTable2 compares the three granularities Table 2 reports
// (1, 4 and 16 words per stripe) on the two fixed-work benchmark
// families (Lee board and STAMP ssca2).
func BenchmarkTable2(b *testing.B) {
	for _, g := range []uint{0, 2, 4} {
		name := map[uint]string{0: "1w", 2: "4w", 4: "16w"}[g]
		b.Run("lee/"+name, func(b *testing.B) {
			leeRun(b, harness.EngineSpec{Kind: "swisstm", StripeWords: 1 << g}, benchBoard)
		})
		b.Run("ssca2/"+name, func(b *testing.B) {
			spec := harness.EngineSpec{Kind: "swisstm", StripeWords: 1 << g}
			for i := 0; i < b.N; i++ {
				app, err := stamp.New("ssca2", stamp.Test)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stamp.Run(app, spec.New(), 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrivatizationAblation measures the cost of the quiescence
// scheme of the paper's §6 (privatization safety) on the red-black tree:
// every update commit additionally waits for concurrent snapshots to
// advance.
func BenchmarkPrivatizationAblation(b *testing.B) {
	for _, safe := range []bool{false, true} {
		name := "unsafe"
		if safe {
			name = "quiescence"
		}
		b.Run(name, func(b *testing.B) {
			e := swisstm.New(swisstm.Config{
				ArenaWords: 1 << 20, TableBits: 14, PrivatizationSafe: safe,
			})
			th0 := e.NewThread(0)
			tree := rbtree.New(th0)
			rng := util.NewRand(3)
			for i := 0; i < 2048; i++ {
				k := stm.Word(rng.Intn(4096) + 1)
				stm.AtomicVoid(th0, func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			benchParallelOp(b, e, func(th stm.Thread, r *util.Rand) {
				k := stm.Word(r.Intn(4096) + 1)
				if r.Intn(100) < 20 {
					stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, k, k) })
				} else {
					stm.AtomicVoid(th, func(tx stm.Tx) { tree.Lookup(tx, k) })
				}
			})
		})
	}
}

// BenchmarkWnSensitivity sweeps the two-phase contention manager's
// promotion threshold Wn (the paper fixes Wn = 10) on the write-dominated
// STMBench7 mix, where the manager matters most.
func BenchmarkWnSensitivity(b *testing.B) {
	for _, wn := range []int{1, 5, 10, 20, 40} {
		b.Run(fmt.Sprintf("Wn%d", wn), func(b *testing.B) {
			cfg := benchCfg
			cfg.ReadOnlyPct = 10
			e := swisstm.New(swisstm.Config{ArenaWords: 1 << 22, TableBits: 18, Wn: wn})
			bench := bench7.Setup(e, cfg)
			benchParallelBind(b, e, func(th stm.Thread, rng *util.Rand) func() {
				return bench.NewOps(th, rng).Op
			})
		})
	}
}
